package shard

// Incremental re-convergence over a mutated store: rather than
// recomputing PageRank or connected components from scratch after an
// ApplyBatch, restart the iteration from the previous fixed point and
// sweep only the shards whose inputs changed — the batch's dirty set
// (Store.DirtyShards) — then let dirtiness propagate outward through
// the same source-range summaries the dense planner skips by: a shard
// becomes dirty only when a source range holding a changed vertex
// feeds it. On localized batches the dirty frontier touches a few
// shards and dies out, so re-convergence loads strictly fewer shards
// than a full recompute while landing on the same fixed point (to
// tolerance).
//
// Both kernels iterate equations whose fixed points are independent
// of sweep schedule, which is what makes skipping clean shards sound:
//
//   - IncrementalPR runs the Jacobi iteration of the strictly local
//     PageRank system r(v) = (1-d)/n + d·Σ_{u→v} r(u)/deg(u), with NO
//     dangling-mass redistribution. Redistribution is a global
//     coupling — every dangling vertex feeds every other — that would
//     make every shard dirty on any degree change; the local system
//     is the standard formulation for incremental and distributed
//     settings. Its fixed point differs from algorithms.PR's
//     (which redistributes), so compare IncrementalPR runs with
//     IncrementalPR runs.
//
//   - IncrementalCC runs in-place monotone min-label propagation
//     along edge direction — the same fixed point as algorithms.CC.
//     Labels only ever decrease, so restarting from a previous fixed
//     point is exact for insert-only batches; a deletion can orphan a
//     label that should rise, which monotone propagation cannot
//     express, so pass prev == nil (full recompute) after deletions.

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// FixedPoint is the result of an incremental re-convergence: the
// vertex state at the fixed point, how many sweeps over the dirty set
// it took, and how many shard visits (fetches) those sweeps cost —
// the quantity incremental re-convergence exists to shrink.
type FixedPoint struct {
	Ranks       []float64 // IncrementalPR only
	Labels      []int32   // IncrementalCC only
	Sweeps      int
	ShardVisits int64
}

// IncrementalPR converges the local PageRank system (damping 0.85, no
// dangling redistribution; see the package comment above) to within
// tol, starting from ranks prev and initially sweeping only the
// shards in seed. prev == nil starts from the uniform vector and seed
// == nil sweeps everything — together a full computation. For
// re-convergence after ApplyBatch, pass the previous FixedPoint's
// Ranks and the batch's Dirty list (or Store.DirtyShards over the
// engine built for the new generation).
//
// A vertex's rank moving by more than tol marks its home range
// changed; the next sweep visits exactly the shards fed by a changed
// range. The returned ranks therefore match a full run's to within a
// small multiple of tol, independent of the seed — shards left out of
// the dirty frontier are precisely those whose equations' inputs
// never moved by more than tol.
func (e *Engine) IncrementalPR(prev []float64, seed []int, tol float64, maxSweeps int) (*FixedPoint, error) {
	e.checkGen()
	const d = 0.85
	n := e.g.NumVertices()
	if prev != nil && len(prev) != n {
		return nil, fmt.Errorf("shard: incremental pr: prev has %d ranks, graph has %d vertices", len(prev), n)
	}
	if tol <= 0 {
		return nil, fmt.Errorf("shard: incremental pr: tolerance %v must be positive", tol)
	}
	r := make([]float64, n)
	if prev == nil {
		for v := range r {
			r[v] = 1 / float64(n)
		}
	} else {
		copy(r, prev)
	}
	base := (1 - d) / float64(n)

	p := e.st.NumShards()
	dirty, err := e.seedDirty(seed, p)
	if err != nil {
		return nil, err
	}
	contrib := make([]float64, n)
	fp := &FixedPoint{Ranks: r}
	for len(dirty) > 0 && fp.Sweeps < maxSweeps {
		// Freeze this sweep's contributions (Jacobi): every dirty
		// shard reads the same source vector regardless of visit order.
		for v := 0; v < n; v++ {
			if deg := e.g.OutDegree(graph.VID(v)); deg > 0 {
				contrib[v] = d * r[v] / float64(deg)
			} else {
				contrib[v] = 0
			}
		}
		changed := make([]uint64, summaryWords(p))
		for _, si := range dirty {
			lo, hi := e.st.Range(si)
			acc := make([]float64, hi-lo)
			if err := e.visitShard(si, func(u, v graph.VID) {
				acc[v-lo] += contrib[u]
			}); err != nil {
				return nil, err
			}
			fp.ShardVisits++
			for v := lo; v < hi; v++ {
				next := base + acc[v-lo]
				if math.Abs(next-r[v]) > tol {
					changed[si/64] |= 1 << (si % 64)
				}
				r[v] = next
			}
		}
		dirty = e.fedBy(changed, p)
		fp.Sweeps++
	}
	if len(dirty) > 0 {
		return nil, fmt.Errorf("shard: incremental pr: %d shards still dirty after %d sweeps", len(dirty), maxSweeps)
	}
	return fp, nil
}

// IncrementalCC converges min-label propagation along edge direction
// (the algorithms.CC fixed point) by in-place sweeps over the dirty
// set. prev == nil starts labels at vertex IDs and seed == nil sweeps
// everything — a full computation. Restarting from a previous fixed
// point is exact only for insert-only batches: labels are monotone
// decreasing, and a deletion may require a label to rise. maxSweeps
// bounds the propagation (labels settle within the component count's
// diameter in sweeps; n+1 is always safe).
func (e *Engine) IncrementalCC(prev []int32, seed []int, maxSweeps int) (*FixedPoint, error) {
	e.checkGen()
	n := e.g.NumVertices()
	if prev != nil && len(prev) != n {
		return nil, fmt.Errorf("shard: incremental cc: prev has %d labels, graph has %d vertices", len(prev), n)
	}
	labels := make([]int32, n)
	if prev == nil {
		for v := range labels {
			labels[v] = int32(v)
		}
	} else {
		copy(labels, prev)
	}

	p := e.st.NumShards()
	dirty, err := e.seedDirty(seed, p)
	if err != nil {
		return nil, err
	}
	fp := &FixedPoint{Labels: labels}
	for len(dirty) > 0 && fp.Sweeps < maxSweeps {
		changed := make([]uint64, summaryWords(p))
		for _, si := range dirty {
			if err := e.visitShard(si, func(u, v graph.VID) {
				if l := labels[u]; l < labels[v] {
					labels[v] = l
					changed[si/64] |= 1 << (si % 64)
				}
			}); err != nil {
				return nil, err
			}
			fp.ShardVisits++
		}
		dirty = e.fedBy(changed, p)
		fp.Sweeps++
	}
	if len(dirty) > 0 {
		return nil, fmt.Errorf("shard: incremental cc: %d shards still dirty after %d sweeps", len(dirty), maxSweeps)
	}
	return fp, nil
}

// seedDirty normalizes an initial dirty list: nil means every shard,
// otherwise indices are validated and deduplicated in order.
func (e *Engine) seedDirty(seed []int, p int) ([]int, error) {
	if seed == nil {
		all := make([]int, p)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	in := make([]bool, p)
	var out []int
	for _, si := range seed {
		if si < 0 || si >= p {
			return nil, fmt.Errorf("shard: incremental: seed shard %d outside [0,%d)", si, p)
		}
		if !in[si] {
			in[si] = true
			out = append(out, si)
		}
	}
	return out, nil
}

// fedBy returns, ascending, the shards fed by any changed source
// range — the dense planner's summary intersection, reused as the
// dirty-propagation step.
func (e *Engine) fedBy(changed []uint64, p int) []int {
	var next []int
	for j := 0; j < p; j++ {
		feeds := e.feeds[j]
		for w := range feeds {
			if feeds[w]&changed[w] != 0 {
				next = append(next, j)
				break
			}
		}
	}
	return next
}

// visitShard fetches shard si through the engine's cache (counting
// hits and loads like any sweep) and streams its edges to f in
// per-destination order, releasing the pin before returning.
func (e *Engine) visitShard(si int, f func(u, v graph.VID)) error {
	sh, err := e.fetch(si, false)
	if err != nil {
		return err
	}
	defer e.cache.release(si)
	for i := range sh.src {
		f(sh.src[i], sh.dst[i])
	}
	return nil
}
