package core

import (
	"testing"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Robustness tests: the engine must behave on degenerate inputs a
// downstream user will eventually feed it.

func pathologicalGraphs() map[string]*graph.Graph {
	selfloops := make([]graph.Edge, 8)
	for i := range selfloops {
		selfloops[i] = graph.Edge{Src: graph.VID(i), Dst: graph.VID(i)}
	}
	multi := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 1, Dst: 0},
	}
	return map[string]*graph.Graph{
		"empty":      graph.FromEdges(0, nil),
		"isolated":   graph.FromEdges(100, nil),
		"singleton":  graph.FromEdges(1, []graph.Edge{{Src: 0, Dst: 0}}),
		"self-loops": graph.FromEdges(8, selfloops),
		"multi-edge": graph.FromEdges(2, multi),
		"one-edge":   graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}}),
		"complete":   gen.Complete(9),
	}
}

func TestEngineOnPathologicalGraphs(t *testing.T) {
	for gname, g := range pathologicalGraphs() {
		for _, opts := range []Options{{}, {Layout: LayoutCOO}, {Layout: LayoutCSC}, {Layout: LayoutCSR}} {
			e := NewEngine(g, opts)
			visited := make([]bool, g.NumVertices())
			op := api.EdgeOp{
				Update: func(u, v graph.VID) bool {
					old := visited[v]
					visited[v] = true
					return !old
				},
				UpdateAtomic: func(u, v graph.VID) bool {
					// The tiny graphs run effectively single-threaded;
					// plain ops are fine for this structural test.
					old := visited[v]
					visited[v] = true
					return !old
				},
			}
			if g.NumVertices() == 0 {
				out := e.EdgeMap(frontier.New(0), op, api.DirAuto)
				if !out.IsEmpty() {
					t.Fatalf("%s: empty graph produced a frontier", gname)
				}
				continue
			}
			out := e.EdgeMap(frontier.All(g), op, api.DirAuto)
			// Every vertex with an in-edge must be activated exactly when
			// it was visited.
			for v := 0; v < g.NumVertices(); v++ {
				wantActive := g.InDegree(graph.VID(v)) > 0
				if visited[v] != wantActive {
					t.Fatalf("%s/%v: vertex %d visited=%v, want %v",
						gname, opts.Layout, v, visited[v], wantActive)
				}
				if out.Has(graph.VID(v)) != wantActive {
					t.Fatalf("%s/%v: vertex %d frontier membership wrong", gname, opts.Layout, v)
				}
			}
		}
	}
}

func TestSelfLoopActivatesSelf(t *testing.T) {
	g := graph.FromEdges(1, []graph.Edge{{Src: 0, Dst: 0}})
	e := NewEngine(g, Options{Threads: 1})
	count := 0
	op := api.EdgeOp{
		Update:       func(u, v graph.VID) bool { count++; return true },
		UpdateAtomic: func(u, v graph.VID) bool { count++; return true },
	}
	out := e.EdgeMap(frontier.FromVertex(g, 0), op, api.DirAuto)
	if count != 1 || out.Count() != 1 {
		t.Fatalf("self-loop: %d applications, frontier %d", count, out.Count())
	}
}

func TestMultiEdgeAppliedPerEdge(t *testing.T) {
	// Duplicate edges are distinct COO entries: the operator runs once
	// per edge (PageRank-style accumulation depends on this).
	g := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1}})
	e := NewEngine(g, Options{Threads: 1, Layout: LayoutCOO})
	count := 0
	op := api.EdgeOp{
		Update:       func(u, v graph.VID) bool { count++; return true },
		UpdateAtomic: func(u, v graph.VID) bool { count++; return true },
	}
	e.EdgeMap(frontier.All(g), op, api.DirAuto)
	if count != 3 {
		t.Fatalf("multi-edge applied %d times, want 3", count)
	}
}
