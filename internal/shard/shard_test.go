package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestWriteOpenRoundTrip(t *testing.T) {
	g := gen.TinySocial()
	dir := t.TempDir()
	st, err := Write(dir, g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices() != g.NumVertices() || st.NumEdges() != g.NumEdges() {
		t.Fatal("sizes wrong")
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.NumShards() != st.NumShards() {
		t.Fatal("shard count changed on reopen")
	}
	// The manifest round-trips every field, including the source-range
	// summary the engine's frontier-aware sweep uses.
	for i := 0; i < st.NumShards(); i++ {
		lo, hi := st.Range(i)
		lo2, hi2 := st2.Range(i)
		if lo != lo2 || hi != hi2 {
			t.Fatalf("shard %d range changed on reopen: [%d,%d) vs [%d,%d)", i, lo, hi, lo2, hi2)
		}
	}
	s1, err := st.SourceSummary()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := st2.SourceSummary()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("summary length changed on reopen: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		for w := range s1[i] {
			if s1[i][w] != s2[i][w] {
				t.Fatalf("summary for shard %d changed on reopen", i)
			}
		}
	}
}

func TestSourceSummaryComputedWhenAbsent(t *testing.T) {
	// Stores written before the summary field existed must yield the
	// identical summary from a streaming pass.
	g := gen.TinySocial()
	dir := t.TempDir()
	st, err := Write(dir, g, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.SourceSummary()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2.m.SrcSummary = nil // simulate a pre-summary manifest
	got, err := st2.SourceSummary()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for w := range want[i] {
			if got[i][w] != want[i][w] {
				t.Fatalf("computed summary for shard %d differs from persisted one", i)
			}
		}
	}
}

func TestSweepVisitsEveryEdgeOnce(t *testing.T) {
	g := gen.TinySocial()
	st, err := Write(t.TempDir(), g, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.Edge]int{}
	if err := st.Sweep(func(u, v graph.VID) { seen[graph.Edge{Src: u, Dst: v}]++ }); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range seen {
		total += int64(c)
	}
	if total != g.NumEdges() {
		t.Fatalf("swept %d edges, want %d", total, g.NumEdges())
	}
	for _, e := range g.Edges() {
		if seen[e] == 0 {
			t.Fatalf("edge %v missing from shards", e)
		}
	}
}

func TestShardDestinationsInRange(t *testing.T) {
	g := gen.TinyRoad()
	st, err := Write(t.TempDir(), g, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < st.NumShards(); i++ {
		lo, hi := st.Range(i)
		c, err := st.LoadShard(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range c.Dst {
			if d < lo || d >= hi {
				t.Fatalf("shard %d: destination %d outside [%d,%d)", i, d, lo, hi)
			}
		}
	}
}

func TestOutDegreesMatchGraph(t *testing.T) {
	g := gen.TinySocial()
	st, err := Write(t.TempDir(), g, 8)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := st.OutDegrees()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if deg[v] != g.OutDegree(graph.VID(v)) {
			t.Fatalf("out-degree[%d] = %d, want %d", v, deg[v], g.OutDegree(graph.VID(v)))
		}
	}
}

// TestStoreFailurePaths: every way a shard directory can be wrong must
// surface as an error — never a panic, never silently wrong data. The
// format-agnostic cases run against stores written in both on-disk
// formats; byte-level shard corruptions are format-specific.
func TestStoreFailurePaths(t *testing.T) {
	manifestOf := func(dir string) string { return filepath.Join(dir, "manifest.json") }
	cases := []struct {
		name string
		// formats to write the store in before corrupting; nil = both.
		formats []Format
		// corrupt mutates a freshly written 4-shard store directory.
		corrupt func(t *testing.T, dir string)
		// openFails: Open(dir) must error. Otherwise Open must succeed
		// and LoadShard(0) must error.
		openFails bool
	}{
		{
			name:      "missing directory",
			corrupt:   func(t *testing.T, dir string) { os.RemoveAll(dir) },
			openFails: true,
		},
		{
			name: "missing manifest",
			corrupt: func(t *testing.T, dir string) {
				if err := os.Remove(manifestOf(dir)); err != nil {
					t.Fatal(err)
				}
			},
			openFails: true,
		},
		{
			name: "manifest is not JSON",
			corrupt: func(t *testing.T, dir string) {
				if err := os.WriteFile(manifestOf(dir), []byte("{"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			openFails: true,
		},
		{
			name: "wrong magic",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(m *manifest) { m.Magic = "not-a-shard-store" })
			},
			openFails: true,
		},
		{
			name: "edge-count list shorter than shard count",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(m *manifest) { m.EdgeCounts = m.EdgeCounts[:1] })
			},
			openFails: true,
		},
		{
			name: "bounds length disagrees with shard count",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(m *manifest) { m.Bounds = m.Bounds[:2] })
			},
			openFails: true,
		},
		{
			name: "source summary wrong shape",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(m *manifest) { m.SrcSummary = m.SrcSummary[:1] })
			},
			openFails: true,
		},
		{
			name: "bounds exceed the vertex count",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(m *manifest) {
					m.Bounds = append([]graph.VID(nil), m.Bounds...)
					m.Bounds[1] = graph.VID(m.Vertices) + 64
				})
			},
			openFails: true,
		},
		{
			name: "bounds not monotone",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(m *manifest) {
					m.Bounds = append([]graph.VID(nil), m.Bounds...)
					m.Bounds[1], m.Bounds[2] = m.Bounds[2], m.Bounds[1]
				})
			},
			openFails: true,
		},
		{
			name: "edge counts disagree with total",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(m *manifest) {
					m.EdgeCounts = append([]int64(nil), m.EdgeCounts...)
					m.EdgeCounts[0]++
				})
			},
			openFails: true,
		},
		{
			// The engine's non-atomic parallel apply requires 64-aligned
			// interior bounds; a foreign store without them must be
			// rejected, not silently corrupt frontiers.
			name: "interior bound not 64-aligned",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(m *manifest) {
					m.Bounds = append([]graph.VID(nil), m.Bounds...)
					m.Bounds[1] += 3
				})
			},
			openFails: true,
		},
		{
			name:    "shard destination outside its range",
			formats: []Format{FormatV1},
			corrupt: func(t *testing.T, dir string) {
				// Shard 0 of Chain(256) owns destinations [0,64); point
				// its last destination at a valid vertex outside that
				// range (v1 layout: int64 count, count src, count dst).
				path := filepath.Join(dir, "shard-0000.bin")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				binary.LittleEndian.PutUint32(data[len(data)-4:], 200)
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "shard file missing",
			corrupt: func(t *testing.T, dir string) {
				if err := os.Remove(filepath.Join(dir, "shard-0000.bin")); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "shard file truncated",
			corrupt: func(t *testing.T, dir string) {
				path := filepath.Join(dir, "shard-0000.bin")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name:    "shard header disagrees with manifest edge count",
			formats: []Format{FormatV1},
			corrupt: func(t *testing.T, dir string) {
				path := filepath.Join(dir, "shard-0000.bin")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				binary.LittleEndian.PutUint64(data[:8], uint64(len(data))) // bogus count
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name:    "v2 header disagrees with manifest edge count",
			formats: []Format{FormatV2},
			corrupt: func(t *testing.T, dir string) {
				// Shard 0 of Chain(256) holds 63 edges, so its count
				// varint is the single byte after the 4-byte magic.
				path := filepath.Join(dir, "shard-0000.bin")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if data[4] >= 0x80 {
					t.Fatalf("test assumes a single-byte count varint, got 0x%x", data[4])
				}
				data[4]++
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name:    "v2 shard file has trailing bytes",
			formats: []Format{FormatV2},
			corrupt: func(t *testing.T, dir string) {
				path := filepath.Join(dir, "shard-0000.bin")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, 0), 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			// A mixed-format directory: the manifest declares one
			// encoding, the shard file holds the other. Both pairings
			// must fail structurally, not decode garbage.
			name: "shard file in the other format",
			corrupt: func(t *testing.T, dir string) {
				st, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				other := FormatV1
				if st.Format() == FormatV1 {
					other = FormatV2
				}
				otherDir := t.TempDir()
				if _, err := WriteFormat(otherDir, gen.Chain(256), 4, other); err != nil {
					t.Fatal(err)
				}
				data, err := os.ReadFile(filepath.Join(otherDir, "shard-0000.bin"))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, "shard-0000.bin"), data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	for _, tc := range cases {
		formats := tc.formats
		if formats == nil {
			formats = []Format{FormatV1, FormatV2}
		}
		for _, format := range formats {
			t.Run(fmt.Sprintf("%s/%v", tc.name, format), func(t *testing.T) {
				g := gen.Chain(256)
				dir := t.TempDir()
				if _, err := WriteFormat(dir, g, 4, format); err != nil {
					t.Fatal(err)
				}
				tc.corrupt(t, dir)
				st, err := Open(dir)
				if tc.openFails {
					if err == nil {
						t.Fatal("Open accepted a corrupt store")
					}
					return
				}
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				if _, err := st.LoadShard(0); err == nil {
					t.Fatal("LoadShard accepted a corrupt shard file")
				}
			})
		}
	}
}

func TestLoadShardRejectsOutOfRangeIndex(t *testing.T) {
	st, err := Write(t.TempDir(), gen.Chain(32), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadShard(99); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := st.LoadShard(-1); err == nil {
		t.Fatal("negative shard index accepted")
	}
}

// rewriteManifest round-trips the manifest through its JSON form with an
// edit applied, so corruption cases stay structurally valid JSON.
func rewriteManifest(t *testing.T, dir string, edit func(*manifest)) {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := st.m
	edit(&m)
	writeTestManifest(t, dir, m)
}

func writeTestManifest(t *testing.T, dir string, m manifest) {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}
