package algorithms

import (
	"math"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// BPResult holds per-vertex marginal beliefs (probability of state 1)
// after the fixed number of message-passing iterations.
type BPResult struct {
	Beliefs []float64
	Iters   int
}

// BP runs loopy belief propagation on binary variables for a fixed
// number of iterations (Table II: edge-oriented, forward preference; the
// paper runs 10 iterations of Bayesian belief propagation from Polymer).
//
// The model is pairwise with Ising-style couplings: every vertex has a
// deterministic prior derived from its ID, every edge (u,v) a coupling
// strength J = WeightOf(u,v), and each iteration sends messages
// m_{u→v} = 2·atanh(tanh(J/2)·tanh(b_u/2)) in log-odds space. This is
// the standard sum-product update without reverse-message subtraction, a
// common simplification for benchmark BP kernels; it exercises exactly
// the same dense edge-centric traversal as the paper's BP.
func BP(sys api.System, iters int) BPResult {
	g := sys.Graph()
	n := g.NumVertices()
	belief := NewF64s(n, 0) // log-odds
	frozen := make([]float64, n)
	acc := NewF64s(n, 0)
	for v := 0; v < n; v++ {
		belief.Set(graph.VID(v), priorLogOdds(graph.VID(v)))
	}

	msg := func(u, v graph.VID) float64 {
		j := float64(graph.WeightOf(u, v))
		return 2 * math.Atanh(math.Tanh(j/2)*math.Tanh(frozen[u]/2))
	}
	op := api.EdgeOp{
		Update: func(u, v graph.VID) bool {
			acc.Add(v, msg(u, v))
			return true
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			acc.AtomicAdd(v, msg(u, v))
			return true
		},
	}

	all := frontier.All(g)
	for it := 0; it < iters; it++ {
		sys.VertexMap(all, func(u graph.VID) { frozen[u] = belief.Get(u) })
		acc.Fill(0)
		sys.EdgeMap(all, op, api.DirForward)
		sys.VertexMap(all, func(v graph.VID) {
			b := priorLogOdds(v) + acc.Get(v)
			// Clamp log-odds so pathological hubs cannot saturate to ±Inf.
			belief.Set(v, graph.ClampFinite(math.Max(-30, math.Min(30, b)), 0))
		})
	}
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		out[v] = 1 / (1 + math.Exp(-belief.Get(graph.VID(v))))
	}
	return BPResult{Beliefs: out, Iters: iters}
}

// priorLogOdds derives a deterministic prior in (0.1,0.9) from the vertex
// ID and returns its log-odds.
func priorLogOdds(v graph.VID) float64 {
	p := 0.1 + 0.8*graph.Uniform01(graph.Mix64(uint64(v)+0xb10f))
	return math.Log(p / (1 - p))
}
