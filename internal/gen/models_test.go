package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestSmallWorldShape(t *testing.T) {
	g := SmallWorld(500, 6, 0.1, 3)
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 2*500*3 {
		t.Fatalf("m = %d, want %d", g.NumEdges(), 2*500*3)
	}
	if !graph.CheckSymmetric(g) {
		t.Fatal("small world should be symmetric")
	}
	// Small-world: rewiring collapses the ring's diameter.
	ring := SmallWorld(500, 6, 0, 3)
	if graph.ApproxDiameterHint(g) >= graph.ApproxDiameterHint(ring) {
		t.Fatalf("rewired diameter %d not below ring %d",
			graph.ApproxDiameterHint(g), graph.ApproxDiameterHint(ring))
	}
}

func TestSmallWorldPanicsOnOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SmallWorld(10, 3, 0.1, 1)
}

func TestPreferentialAttachmentShape(t *testing.T) {
	g := PreferentialAttachment(1000, 4, 9)
	if g.NumVertices() != 1000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !graph.CheckSymmetric(g) {
		t.Fatal("BA should be symmetric")
	}
	s := graph.ComputeStats("ba", g)
	// Preferential attachment yields heavy-tailed degrees.
	if s.MaxOutDegree < 5*int64(s.AvgDegree) {
		t.Fatalf("BA lacks hubs: max %d avg %.1f", s.MaxOutDegree, s.AvgDegree)
	}
	// Seed clique on m+1=5 vertices (10 undirected edges) plus exactly m
	// attachments per arriving vertex, stored as two arcs each.
	if got := g.NumEdges(); got != 2*(10+(1000-5)*4) {
		t.Fatalf("m = %d, want %d", got, 2*(10+(1000-5)*4))
	}
}

func TestKroneckerSelfSimilar(t *testing.T) {
	p := [2][2]float64{{0.57, 0.19}, {0.19, 0.05}}
	g := Kronecker(10, 8, p, 7)
	if g.NumVertices() != 1024 || g.NumEdges() != 8192 {
		t.Fatalf("sizes %d/%d", g.NumVertices(), g.NumEdges())
	}
	s := graph.ComputeStats("kron", g)
	if s.GiniOut < 0.4 {
		t.Fatalf("Kronecker with skewed initiator should be skewed, gini %v", s.GiniOut)
	}
	// Determinism.
	h := Kronecker(10, 8, p, 7)
	eg, eh := g.Edges(), h.Edges()
	for i := range eg {
		if eg[i] != eh[i] {
			t.Fatal("same seed diverged")
		}
	}
}
