package partition

import "repro/internal/graph"

// ReplicationFactor computes the average number of partitions in which a
// vertex is replicated under partitioning-by-destination with the pruned
// CSR layout: vertex u appears in every partition holding at least one of
// u's out-edges (Figure 3). For the worked example of Figure 1 (6
// vertices, 14 edges, 2 partitions) this returns 7/6.
//
// The computation is O(|E|) without materialising the layout: since
// out-neighbour lists are sorted by destination and partitions are
// contiguous ranges, the number of partitions u touches equals the number
// of distinct home values in its sorted neighbour list, counted by
// scanning boundary crossings.
func ReplicationFactor(g *graph.Graph, pt *Partitioning) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	var replicas int64
	for v := 0; v < n; v++ {
		ns := g.OutNeighbors(graph.VID(v))
		i := 0
		for i < len(ns) {
			h := pt.Home(ns[i])
			replicas++
			hi := pt.Bounds[h+1]
			for i < len(ns) && ns[i] < hi {
				i++
			}
		}
	}
	return float64(replicas) / float64(n)
}

// WorstCaseReplicationFactor returns |E|/|V| — the replication factor when
// every vertex is its own partition (§II.D: 35.2 for Twitter, 76.2 for
// Orkut).
func WorstCaseReplicationFactor(g *graph.Graph) float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}

// ReplicationCurve evaluates the replication factor for each partition
// count in ps, reproducing one series of Figure 3.
func ReplicationCurve(g *graph.Graph, ps []int, crit Criterion) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		pt := ByDestination(g, p, crit)
		out[i] = ReplicationFactor(g, pt)
	}
	return out
}
