package aio

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReaderDepthBudget proves the reader-wide in-flight bound: with a
// depth-2 budget over one domain, exactly two of five gated reads run
// at once — the third starts only when one of the first two retires.
func TestReaderDepthBudget(t *testing.T) {
	const depth, n = 2, 5
	release := make(chan struct{})
	var running, peak int64
	r := New[int]([]int{n}, depth, nil)
	defer r.Close()

	var tickets []*Ticket[int]
	for i := 0; i < n; i++ {
		idx := i
		tickets = append(tickets, r.Submit(0, func() (int, error) {
			c := atomic.AddInt64(&running, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
					break
				}
			}
			<-release
			atomic.AddInt64(&running, -1)
			return idx, nil
		}))
	}

	waitFor(t, "the budget to fill", func() bool { return atomic.LoadInt64(&running) == depth })
	// Give excess reads every chance to (wrongly) start.
	time.Sleep(50 * time.Millisecond)
	if got := atomic.LoadInt64(&running); got != depth {
		t.Fatalf("%d reads in flight with depth %d", got, depth)
	}
	close(release)
	for i, tk := range tickets {
		v, err := tk.Wait()
		if err != nil || v != i {
			t.Fatalf("ticket %d resolved (%d, %v), want (%d, nil)", i, v, err, i)
		}
	}
	if p := atomic.LoadInt64(&peak); p != depth {
		t.Fatalf("observed peak %d, want exactly %d", p, depth)
	}
	if rp := r.PeakInFlight(); rp != depth {
		t.Fatalf("reader recorded peak %d, want %d", rp, depth)
	}
}

// TestReaderSlowReadsReorderCompletion injects a slow read and proves
// completions reorder freely across tickets: the second submission
// (another domain, fast) resolves while the first is still blocked,
// and each ticket still carries its own result.
func TestReaderSlowReadsReorderCompletion(t *testing.T) {
	slow := make(chan struct{})
	r := New[string]([]int{1, 1}, 2, nil)
	defer r.Close()

	t0 := r.Submit(0, func() (string, error) {
		<-slow
		return "slow", nil
	})
	t1 := r.Submit(1, func() (string, error) { return "fast", nil })

	if v, err := t1.Wait(); err != nil || v != "fast" {
		t.Fatalf("fast ticket resolved (%q, %v)", v, err)
	}
	if t0.Ready() {
		t.Fatal("slow ticket reported ready while its read was still blocked")
	}
	close(slow)
	if v, err := t0.Wait(); err != nil || v != "slow" {
		t.Fatalf("slow ticket resolved (%q, %v)", v, err)
	}
}

// TestReaderFaultInjection drives the reader through a flaky backing
// store: short reads (io.ErrUnexpectedEOF), transient failures that
// succeed on resubmission, and interleaved healthy reads. Every fault
// stays confined to its own ticket and the reader remains fully
// serviceable afterwards.
func TestReaderFaultInjection(t *testing.T) {
	r := New[int]([]int{16, 16}, 3, nil)
	defer r.Close()

	// A short read surfaces as its ticket's error.
	short := r.Submit(0, func() (int, error) { return 0, io.ErrUnexpectedEOF })
	if _, err := short.Wait(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read resolved with %v, want io.ErrUnexpectedEOF", err)
	}

	// A transiently failing source: the first attempt errors, the
	// caller resubmits, the retry succeeds.
	var attempts int64
	flaky := func() (int, error) {
		if atomic.AddInt64(&attempts, 1) == 1 {
			return 0, fmt.Errorf("transient: device busy")
		}
		return 42, nil
	}
	if _, err := r.Submit(1, flaky).Wait(); err == nil {
		t.Fatal("first flaky attempt unexpectedly succeeded")
	}
	if v, err := r.Submit(1, flaky).Wait(); err != nil || v != 42 {
		t.Fatalf("retry resolved (%d, %v), want (42, nil)", v, err)
	}

	// Healthy traffic on both domains after the faults.
	var tickets []*Ticket[int]
	for i := 0; i < 8; i++ {
		idx := i
		tickets = append(tickets, r.Submit(i%2, func() (int, error) { return idx, nil }))
	}
	for i, tk := range tickets {
		if v, err := tk.Wait(); err != nil || v != i {
			t.Fatalf("post-fault ticket %d resolved (%d, %v)", i, v, err)
		}
	}
}

// TestReaderCloseResolvesQueued: closing with reads queued behind a
// blocked one resolves the queued tickets ErrClosed without executing
// them, while the in-flight read finishes normally.
func TestReaderCloseResolvesQueued(t *testing.T) {
	var executed int64
	// Ample queue capacity: the in-flight read below probes with extra
	// submissions while it waits for Close to begin.
	r := New[int]([]int{64}, 1, nil)

	first := r.Submit(0, func() (int, error) {
		atomic.AddInt64(&executed, 1)
		// Hold the worker until Close has provably begun: once the
		// reader is marked closed, a Submit resolves ErrClosed
		// immediately instead of enqueueing. Probes enqueued before
		// that point drain as ErrClosed after it, never execute — the
		// worker is busy right here until then.
		for {
			if p := r.Submit(0, func() (int, error) { return -1, nil }); p.Ready() {
				if _, err := p.Wait(); errors.Is(err, ErrClosed) {
					return 1, nil
				}
			}
			time.Sleep(time.Millisecond)
		}
	})
	waitFor(t, "the first read to start", func() bool { return atomic.LoadInt64(&executed) == 1 })
	q1 := r.Submit(0, func() (int, error) { atomic.AddInt64(&executed, 1); return 2, nil })
	q2 := r.Submit(0, func() (int, error) { atomic.AddInt64(&executed, 1); return 3, nil })

	closed := make(chan struct{})
	go func() { r.Close(); close(closed) }()
	<-closed

	if v, err := first.Wait(); err != nil || v != 1 {
		t.Fatalf("in-flight read resolved (%d, %v), want (1, nil)", v, err)
	}
	for i, tk := range []*Ticket[int]{q1, q2} {
		if _, err := tk.Wait(); !errors.Is(err, ErrClosed) {
			t.Fatalf("queued ticket %d resolved with %v, want ErrClosed", i, err)
		}
	}
	if got := atomic.LoadInt64(&executed); got != 1 {
		t.Fatalf("%d reads executed, want only the in-flight one", got)
	}

	// Submissions after Close, and to a capacity-less domain, resolve
	// immediately with an error instead of wedging.
	if _, err := r.Submit(0, func() (int, error) { return 0, nil }).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close submission resolved with %v, want ErrClosed", err)
	}
	r2 := New[int]([]int{0, 2}, 1, nil)
	defer r2.Close()
	if _, err := r2.Submit(0, func() (int, error) { return 0, nil }).Wait(); err == nil {
		t.Fatal("submission to a domain with no queue capacity did not error")
	}
	r.Close() // idempotent
}

// TestReaderCloseQuitPriority: a worker parked waiting for an
// in-flight budget slot when Close lands must resolve its queued read
// ErrClosed rather than execute it — the quit signal and the freed
// slot become ready together, and without an explicit re-check the
// select between them picks at random.
func TestReaderCloseQuitPriority(t *testing.T) {
	for round := 0; round < 50; round++ {
		gate := make(chan struct{})
		started := make(chan struct{})
		var executed int64
		// Two domains, depth 1: domain 0's worker holds the only budget
		// slot, so domain 1's worker parks waiting for it.
		r := New[int]([]int{1, 1}, 1, nil)
		a := r.Submit(0, func() (int, error) { close(started); <-gate; return 1, nil })
		<-started
		b := r.Submit(1, func() (int, error) { atomic.AddInt64(&executed, 1); return 2, nil })

		closed := make(chan struct{})
		go func() { r.Close(); close(closed) }()
		// Once a fresh submission resolves ErrClosed, Close has closed
		// quit (same critical section), so when the gate opens b's
		// worker sees quit and the freed slot ready together.
		waitFor(t, "Close to begin", func() bool {
			p := r.Submit(0, func() (int, error) { return -1, nil })
			if !p.Ready() {
				return false
			}
			_, err := p.Wait()
			return errors.Is(err, ErrClosed)
		})
		close(gate)
		<-closed

		if v, err := a.Wait(); err != nil || v != 1 {
			t.Fatalf("round %d: in-flight read resolved (%d, %v), want (1, nil)", round, v, err)
		}
		if _, err := b.Wait(); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: parked read resolved with %v, want ErrClosed", round, err)
		}
		if atomic.LoadInt64(&executed) != 0 {
			t.Fatalf("round %d: parked read executed after Close", round)
		}
	}
}

// TestReaderSubmitOverflow: a submission beyond a domain's queue
// capacity resolves with an error instead of blocking — a blocking
// send under the reader's mutex would deadlock a concurrent Close —
// and the reads already accepted are unaffected.
func TestReaderSubmitOverflow(t *testing.T) {
	gate := make(chan struct{})
	r := New[int]([]int{1}, 1, nil)

	first := r.Submit(0, func() (int, error) { <-gate; return 1, nil })
	waitFor(t, "the first read to be in flight", func() bool { return r.InFlight() == 1 })
	queued := r.Submit(0, func() (int, error) { return 2, nil })
	over := r.Submit(0, func() (int, error) { return 3, nil })
	if !over.Ready() {
		t.Fatal("overflow submission did not resolve immediately")
	}
	if _, err := over.Wait(); err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("overflow submission resolved with %v, want a queue-full error", err)
	}

	close(gate)
	if v, err := first.Wait(); err != nil || v != 1 {
		t.Fatalf("in-flight read resolved (%d, %v), want (1, nil)", v, err)
	}
	if v, err := queued.Wait(); err != nil || v != 2 {
		t.Fatalf("queued read resolved (%d, %v), want (2, nil)", v, err)
	}
	r.Close()
}

// TestReaderNotify: the completion callback fires for every resolved
// ticket — success, failure and ErrClosed drains alike.
func TestReaderNotify(t *testing.T) {
	var notified int64
	r := New[int]([]int{4}, 2, func() { atomic.AddInt64(&notified, 1) })
	tk1 := r.Submit(0, func() (int, error) { return 1, nil })
	tk2 := r.Submit(0, func() (int, error) { return 0, errors.New("boom") })
	tk1.Wait()
	tk2.Wait()
	waitFor(t, "completion notifications", func() bool { return atomic.LoadInt64(&notified) >= 2 })
	r.Close()
}

// TestReaderNoGoroutineLeaks: a reader's workers all exit at Close,
// including with reads still queued and with per-domain worker pools.
func TestReaderNoGoroutineLeaks(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		gate := make(chan struct{})
		r := New[int]([]int{8, 8, 0, 8}, 4, nil)
		var wg sync.WaitGroup
		for i := 0; i < 12; i++ {
			d := []int{0, 1, 3}[i%3]
			tk := r.Submit(d, func() (int, error) { <-gate; return 0, nil })
			wg.Add(1)
			go func() { defer wg.Done(); tk.Wait() }()
		}
		close(gate)
		wg.Wait()
		r.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for func() int { runtime.GC(); return runtime.NumGoroutine() }() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	runtime.GC()
	if now := runtime.NumGoroutine(); now > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines grew from %d to %d after Close:\n%s", baseline, now, buf[:runtime.Stack(buf, true)])
	}
}
