// Demonstrates the multi-tenant graph-serving daemon: shard a graph to
// disk, host it in a gserve core, and run concurrent queries over the
// HTTP/JSON API — showing shared residency (later queries ride the
// shards earlier ones loaded), cross-query load accounting, and
// bit-identical results under concurrency.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	g := gen.TinySocial()
	dir := filepath.Join(os.TempDir(), "gserve-example")
	defer os.RemoveAll(dir)
	const shards = 12
	if _, err := shard.Create(dir, g, shard.WriteOptions{Partitions: shards}); err != nil {
		panic(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, sharded to %d partitions\n",
		g.NumVertices(), g.NumEdges(), shards)

	// The daemon core behind a real HTTP server (gserve wraps exactly
	// this behind a TCP listener and signal handling).
	s := serve.New(serve.Config{CacheBytes: 64 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	post(ts.URL+"/v1/stores", map[string]string{"name": "social", "dir": dir})
	fmt.Printf("opened store 'social' at %s\n", ts.URL)

	// Submit PageRank, BFS and CC concurrently: three sessions over one
	// store, sharing the refcounted cache and the disk passes.
	var wg sync.WaitGroup
	for _, spec := range []map[string]any{
		{"store": "social", "algo": "pagerank", "iters": 10},
		{"store": "social", "algo": "bfs", "src": 1},
		{"store": "social", "algo": "cc"},
	} {
		wg.Add(1)
		go func(spec map[string]any) {
			defer wg.Done()
			var sub struct {
				ID string `json:"id"`
			}
			post(ts.URL+"/v1/queries", spec, &sub)
			var info struct {
				Algo   string  `json:"algo"`
				Status string  `json:"status"`
				Digest string  `json:"digest"`
				Loads  int64   `json:"loads"`
				WallMS float64 `json:"wall_ms"`
			}
			get(ts.URL+"/v1/queries/"+sub.ID+"?wait=1", &info)
			fmt.Printf("  %-8s %s in %.1fms, %d disk loads, digest %s\n",
				info.Algo, info.Status, info.WallMS, info.Loads, info.Digest)
		}(spec)
	}
	wg.Wait()

	var stats struct {
		Cache   shard.SharedCacheStats `json:"cache"`
		Queries int                    `json:"queries"`
	}
	get(ts.URL+"/v1/stats", &stats)
	c := stats.Cache
	fmt.Printf("shared cache after %d queries: %d loads, %d hits, %d shared reads, %d/%d bytes resident\n",
		stats.Queries, c.Loads, c.Hits, c.Shared, c.Bytes, c.Budget)
	fmt.Printf("the three queries touched %d shards total — loads stay at (or near) one per shard\n", shards)
}

func post(url string, body any, out ...any) {
	buf, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		panic(err)
	}
	decode(resp, out)
}

func get(url string, out ...any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out []any) {
	defer resp.Body.Close()
	if len(out) > 0 {
		if err := json.NewDecoder(resp.Body).Decode(out[0]); err != nil {
			panic(err)
		}
	}
}
