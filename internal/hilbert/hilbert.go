// Package hilbert implements the Hilbert space-filling curve and the edge
// sort orders compared in Figure 7: by source (CSR order), by destination
// (CSC order) and by Hilbert index of the (src,dst) coordinate. Sorting
// COO partitions in Hilbert order improves spatial locality of both
// endpoint arrays simultaneously (paper: up to 16.2% faster).
package hilbert

import (
	"math/bits"
	"sort"

	"repro/internal/graph"
)

// XY2D maps the point (x,y) on a 2^order × 2^order grid to its distance
// along the Hilbert curve. Standard iterative rotate-and-flip algorithm.
func XY2D(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rot(s, x, y, rx, ry)
	}
	return d
}

// D2XY is the inverse of XY2D: curve distance to grid point.
func D2XY(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < 1<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// rot rotates/flips a quadrant appropriately.
func rot(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// OrderFor returns the curve order (grid side exponent) needed to cover n
// vertex IDs; minimum 1 so the 1-vertex graph still maps.
func OrderFor(n int) uint {
	if n <= 1 {
		return 1
	}
	return uint(bits.Len(uint(n - 1)))
}

// EdgeOrder selects how a COO edge block is sorted.
type EdgeOrder int

const (
	// BySource keeps CSR order: sorted by source, then destination. The
	// current arrays are streamed; next arrays are random.
	BySource EdgeOrder = iota
	// ByDestination uses CSC order: sorted by destination, then source.
	ByDestination
	// ByHilbert sorts by Hilbert index of (src,dst), localising both
	// endpoint accesses.
	ByHilbert
)

func (o EdgeOrder) String() string {
	switch o {
	case BySource:
		return "source"
	case ByDestination:
		return "destination"
	case ByHilbert:
		return "hilbert"
	default:
		return "unknown"
	}
}

// Sort reorders the COO block in place according to the requested order.
func Sort(c *graph.COO, order EdgeOrder) {
	switch order {
	case BySource:
		sortPairs(c, func(i, j int) bool {
			if c.Src[i] != c.Src[j] {
				return c.Src[i] < c.Src[j]
			}
			return c.Dst[i] < c.Dst[j]
		})
	case ByDestination:
		sortPairs(c, func(i, j int) bool {
			if c.Dst[i] != c.Dst[j] {
				return c.Dst[i] < c.Dst[j]
			}
			return c.Src[i] < c.Src[j]
		})
	case ByHilbert:
		ord := OrderFor(c.N)
		keys := make([]uint64, len(c.Src))
		for i := range c.Src {
			keys[i] = XY2D(ord, c.Src[i], c.Dst[i])
		}
		idx := make([]int, len(keys))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
		applyPermutation(c, idx)
	}
}

// sortPairs sorts the parallel Src/Dst arrays with the given comparator.
func sortPairs(c *graph.COO, less func(i, j int) bool) {
	sort.Sort(&cooSorter{c: c, less: less})
}

type cooSorter struct {
	c    *graph.COO
	less func(i, j int) bool
}

func (s *cooSorter) Len() int           { return len(s.c.Src) }
func (s *cooSorter) Less(i, j int) bool { return s.less(i, j) }
func (s *cooSorter) Swap(i, j int) {
	s.c.Src[i], s.c.Src[j] = s.c.Src[j], s.c.Src[i]
	s.c.Dst[i], s.c.Dst[j] = s.c.Dst[j], s.c.Dst[i]
}

func applyPermutation(c *graph.COO, idx []int) {
	src := make([]graph.VID, len(idx))
	dst := make([]graph.VID, len(idx))
	for i, j := range idx {
		src[i] = c.Src[j]
		dst[i] = c.Dst[j]
	}
	copy(c.Src, src)
	copy(c.Dst, dst)
}
