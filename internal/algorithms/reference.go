package algorithms

import (
	"container/heap"
	"math"

	"repro/internal/graph"
)

// Serial reference implementations used as oracles by the test suite.
// They share the parallel versions' numeric conventions (weights,
// damping, priors) but none of their code paths.

// SerialBFSDepths returns hop counts from src over out-edges, -1 for
// unreachable vertices.
func SerialBFSDepths(g *graph.Graph, src graph.VID) []int32 {
	n := g.NumVertices()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []graph.VID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.OutNeighbors(u) {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return depth
}

// SerialCCLabels returns the label-propagation fixpoint along edge
// direction: label[v] = min initial label over v and all vertices with a
// directed path to v. Computed by repeated sweeps until stable.
func SerialCCLabels(g *graph.Graph) []int32 {
	n := g.NumVertices()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			lu := labels[u]
			for _, v := range g.OutNeighbors(graph.VID(u)) {
				if lu < labels[v] {
					labels[v] = lu
					changed = true
				}
			}
		}
	}
	return labels
}

// SerialPR mirrors PR's power iteration exactly (same damping, dangling
// redistribution and iteration count) in serial double precision.
func SerialPR(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			d := g.OutDegree(graph.VID(u))
			if d == 0 {
				dangling += ranks[u]
				continue
			}
			c := ranks[u] / float64(d)
			for _, v := range g.OutNeighbors(graph.VID(u)) {
				next[v] += c
			}
		}
		base := (1-Damping)/float64(n) + Damping*dangling/float64(n)
		for v := range ranks {
			ranks[v] = base + Damping*next[v]
		}
	}
	return ranks
}

// SerialSPMV mirrors SPMV serially.
func SerialSPMV(g *graph.Graph) []float64 {
	n := g.NumVertices()
	y := make([]float64, n)
	for u := 0; u < n; u++ {
		xu := SPMVInput(graph.VID(u))
		for _, v := range g.OutNeighbors(graph.VID(u)) {
			y[v] += float64(graph.WeightOf(graph.VID(u), v)) * xu
		}
	}
	return y
}

// SerialSSSP computes exact shortest-path distances from src with
// Dijkstra (weights are positive by construction).
func SerialSSSP(g *graph.Graph, src graph.VID) []float32 {
	n := g.NumVertices()
	dist := make([]float32, n)
	for i := range dist {
		dist[i] = float32(math.Inf(1))
	}
	dist[src] = 0
	pq := &vidHeap{items: []vidDist{{src, 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(vidDist)
		if it.d > dist[it.v] {
			continue
		}
		for _, w := range g.OutNeighbors(it.v) {
			nd := it.d + graph.WeightOf(it.v, w)
			if nd < dist[w] {
				dist[w] = nd
				heap.Push(pq, vidDist{w, nd})
			}
		}
	}
	return dist
}

type vidDist struct {
	v graph.VID
	d float32
}

type vidHeap struct{ items []vidDist }

func (h *vidHeap) Len() int           { return len(h.items) }
func (h *vidHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *vidHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *vidHeap) Push(x interface{}) { h.items = append(h.items, x.(vidDist)) }
func (h *vidHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// SerialBC is Brandes' single-source betweenness (unweighted) in serial
// form, returning dependency scores matching BC.
func SerialBC(g *graph.Graph, src graph.VID) []float64 {
	n := g.NumVertices()
	sigma := make([]float64, n)
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	sigma[src] = 1
	depth[src] = 0
	order := []graph.VID{src}
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		for _, v := range g.OutNeighbors(u) {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				order = append(order, v)
			}
			if depth[v] == depth[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	delta := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		for _, v := range g.OutNeighbors(u) {
			if depth[v] == depth[u]+1 {
				delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
			}
		}
	}
	return delta
}

// SerialBP mirrors BP's message passing serially.
func SerialBP(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	belief := make([]float64, n)
	for v := range belief {
		belief[v] = priorLogOdds(graph.VID(v))
	}
	frozen := make([]float64, n)
	acc := make([]float64, n)
	for it := 0; it < iters; it++ {
		copy(frozen, belief)
		for i := range acc {
			acc[i] = 0
		}
		for u := 0; u < n; u++ {
			fu := math.Tanh(frozen[u] / 2)
			for _, v := range g.OutNeighbors(graph.VID(u)) {
				j := float64(graph.WeightOf(graph.VID(u), v))
				acc[v] += 2 * math.Atanh(math.Tanh(j/2)*fu)
			}
		}
		for v := 0; v < n; v++ {
			b := priorLogOdds(graph.VID(v)) + acc[v]
			belief[v] = graph.ClampFinite(math.Max(-30, math.Min(30, b)), 0)
		}
	}
	out := make([]float64, n)
	for v := range out {
		out[v] = 1 / (1 + math.Exp(-belief[v]))
	}
	return out
}
