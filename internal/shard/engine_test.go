package shard

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sched"
)

func buildTestEngine(t *testing.T, g *graph.Graph, p int, opts Options) *Engine {
	t.Helper()
	e, err := Build(t.TempDir(), g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineConformance(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"social": gen.TinySocial(),
		"road":   gen.TinyRoad(),
		"chain":  gen.Chain(100),
		"star":   gen.Star(130),
	}
	// The multi-threaded entries are deliberate -race fodder: under CI's
	// race detector they exercise the windowed concurrent sweep (staging
	// goroutine + up-to-D simultaneous domain applies) and the
	// unpipelined fallback with >1 worker, which is where an exclusivity
	// bug would surface. "starved-domains" runs more domains than
	// workers, the configuration where Split hands the same worker ID to
	// several concurrently-applying domains.
	configs := map[string]Options{
		"default":         {},
		"serial-tiny":     {Threads: 1, CacheShards: 1},
		"aggressive-lru":  {Threads: 4, CacheShards: 2},
		"pipelined-mt":    {Threads: 8, CacheShards: 2},
		"no-prefetch-mt":  {Threads: 8, CacheShards: 2, NoPrefetch: true},
		"windowed-mt":     {Threads: 8, CacheShards: 4, Window: 4},
		"window-one":      {Threads: 4, CacheShards: 2, Window: 1},
		"starved-domains": {Threads: 2, CacheShards: 4, Window: 4, Topology: sched.Topology{Domains: 6}},
		"aio-depth-2":     {Threads: 4, CacheShards: 4, Window: 4, IODepth: 2},
		"aio-depth-max":   {Threads: 8, CacheShards: 4, IODepth: 4, Topology: sched.Topology{Domains: 4}},
		"aio-tight-cache": {Threads: 4, CacheShards: 2, IODepth: 2, Window: 2},
		"scatter-gather":  {Threads: 8, CacheShards: 2, SweepMode: SweepScatterGather},
		"sg-window-one":   {Threads: 4, CacheShards: 2, Window: 1, SweepMode: SweepScatterGather},
		"sg-aio-depth":    {Threads: 8, CacheShards: 4, Window: 4, IODepth: 4, SweepMode: SweepScatterGather, Topology: sched.Topology{Domains: 4}},
	}
	for gname, g := range graphs {
		for cname, opts := range configs {
			e := buildTestEngine(t, g, 8, opts)
			if err := api.CheckSystem(e); err != nil {
				t.Errorf("%s/%s: %v", gname, cname, err)
			}
		}
	}
}

func TestEngineRejectsMismatchedGraph(t *testing.T) {
	st, err := Write(t.TempDir(), gen.Chain(64), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(st, gen.Chain(32), Options{}); err == nil {
		t.Fatal("engine accepted a graph that does not match the store")
	}
}

// bfsOp is the canonical CAS parent-claiming operator used to drive the
// engine through realistic multi-round frontier evolution.
func bfsOp(parents []int32) api.EdgeOp {
	return api.EdgeOp{
		Cond: func(v graph.VID) bool { return atomic.LoadInt32(&parents[v]) < 0 },
		Update: func(u, v graph.VID) bool {
			return atomic.CompareAndSwapInt32(&parents[v], -1, int32(u))
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			return atomic.CompareAndSwapInt32(&parents[v], -1, int32(u))
		},
	}
}

// TestOutOfCoreSweepLoadsOneShardAtATime is the resident-set check: with
// a one-shard cache budget, a full iterative run keeps at most one
// uncached shard in flight at any moment and at most one shard resident
// in the cache — the defining property of out-of-core execution.
func TestOutOfCoreSweepLoadsOneShardAtATime(t *testing.T) {
	g := gen.TinySocial()
	e := buildTestEngine(t, g, 12, Options{CacheShards: 1})

	var inFlight, maxInFlight int64
	e.onLoadBegin = func(int) {
		if n := atomic.AddInt64(&inFlight, 1); n > atomic.LoadInt64(&maxInFlight) {
			atomic.StoreInt64(&maxInFlight, n)
		}
		if e.cache.len() > 1 {
			t.Errorf("cache holds %d shards during a load, budget is 1", e.cache.len())
		}
	}
	e.onLoadEnd = func(int) { atomic.AddInt64(&inFlight, -1) }

	// A multi-round traversal plus a dense sweep exercise both paths.
	parents := make([]int32, g.NumVertices())
	for i := range parents {
		parents[i] = -1
	}
	src := graph.VID(0)
	parents[src] = int32(src)
	f := frontier.FromVertex(g, src)
	for !f.IsEmpty() {
		f = e.EdgeMap(f, bfsOp(parents), api.DirAuto)
	}
	counts := make([]int64, g.NumVertices())
	e.EdgeMap(frontier.All(g), api.EdgeOp{
		Update:       func(u, v graph.VID) bool { counts[v]++; return true },
		UpdateAtomic: func(u, v graph.VID) bool { atomic.AddInt64(&counts[v], 1); return true },
	}, api.DirAuto)

	if got := atomic.LoadInt64(&maxInFlight); got != 1 {
		t.Fatalf("max concurrent uncached shard loads = %d, want 1", got)
	}
	if e.cache.len() > 1 {
		t.Fatalf("cache holds %d shards after the run, budget is 1", e.cache.len())
	}
	if st := e.Stats(); st.ShardLoads == 0 {
		t.Fatal("no shard loads recorded; the hooks observed nothing")
	}
}

// TestOutOfCoreSparseSweepSkipsInactiveShards is the frontier-awareness
// property: on random graphs with random sparse frontiers, a shard none
// of whose edges originate from an active vertex is never loaded, and
// every shard that does hold an active edge is loaded (the plan is
// exact, not just sound).
func TestOutOfCoreSparseSweepSkipsInactiveShards(t *testing.T) {
	f := func(raw []uint16, nBits uint8, pick uint16) bool {
		n := 1 << (6 + nBits%3) // 64..256 vertices, so several 64-aligned ranges
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{
				Src: graph.VID(int(raw[i]) % n),
				Dst: graph.VID(int(raw[i+1]) % n),
			})
		}
		g := graph.FromEdges(n, edges)
		if g.NumEdges() == 0 {
			return true
		}
		e := buildTestEngine(t, g, 4, Options{})
		active := graph.VID(int(pick) % n)
		fr := frontier.FromVertex(g, active)
		if fr.Count()+fr.OutDegree(g) > g.NumEdges()/e.opts.SparseDiv {
			return true // not a sparse frontier; the property targets the sparse path
		}

		loaded := map[int]bool{}
		e.onLoadBegin = func(i int) { loaded[i] = true }
		e.EdgeMap(fr, api.EdgeOp{
			Update:       func(u, v graph.VID) bool { return true },
			UpdateAtomic: func(u, v graph.VID) bool { return true },
		}, api.DirAuto)

		wantLoaded := map[int]bool{}
		for _, ed := range g.Edges() {
			if ed.Src == active {
				wantLoaded[e.st.Home(ed.Dst)] = true
			}
		}
		if len(loaded) != len(wantLoaded) {
			return false
		}
		for i := range wantLoaded {
			if !loaded[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOutOfCoreDenseSweepSkipsUnfedShards: even on dense frontiers, a
// shard whose source-range summary intersects no active range (here:
// shards with no edges at all) is skipped.
func TestOutOfCoreDenseSweepSkipsUnfedShards(t *testing.T) {
	// All edges target the low quarter of the ID space, so high-range
	// shards are empty and must never be touched.
	n := 512
	var edges []graph.Edge
	for v := 1; v < n/4; v++ {
		edges = append(edges, graph.Edge{Src: graph.VID(v - 1), Dst: graph.VID(v)})
		edges = append(edges, graph.Edge{Src: graph.VID(v), Dst: graph.VID(v - 1)})
	}
	g := graph.FromEdges(n, edges)
	e := buildTestEngine(t, g, 8, Options{})
	loaded := map[int]bool{}
	e.onLoadBegin = func(i int) { loaded[i] = true }

	e.EdgeMap(frontier.All(g), api.EdgeOp{
		Update:       func(u, v graph.VID) bool { return true },
		UpdateAtomic: func(u, v graph.VID) bool { return true },
	}, api.DirAuto)

	for i := range loaded {
		lo, hi := e.st.Range(i)
		var hasEdges bool
		for _, ed := range g.Edges() {
			if ed.Dst >= lo && ed.Dst < hi {
				hasEdges = true
				break
			}
		}
		if !hasEdges {
			t.Fatalf("dense sweep loaded edgeless shard %d [%d,%d)", i, lo, hi)
		}
	}
	if st := e.Stats(); st.ShardsSkipped == 0 {
		t.Fatal("dense sweep skipped nothing on a graph with empty shards")
	}
}

// TestEngineDeterministic mirrors internal/core/determinism_test.go: the
// frontier sequence of a CAS traversal is identical run to run under
// full parallelism, because destination sub-ranges are 64-aligned and
// partition-exclusive.
func TestEngineDeterministic(t *testing.T) {
	g := gen.TinySocial()
	run := func() []int64 {
		e := buildTestEngine(t, g, 10, Options{CacheShards: 3})
		parents := make([]int32, g.NumVertices())
		for i := range parents {
			parents[i] = -1
		}
		src := graph.VID(0)
		parents[src] = int32(src)
		var sizes []int64
		f := frontier.FromVertex(g, src)
		for !f.IsEmpty() {
			f = e.EdgeMap(f, bfsOp(parents), api.DirAuto)
			sizes = append(sizes, f.Count())
		}
		return sizes
	}
	want := run()
	for i := 0; i < 10; i++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("run %d: %d rounds vs %d", i, len(got), len(want))
		}
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("run %d round %d: frontier %d vs %d", i, r, got[r], want[r])
			}
		}
	}
}

// TestEngineCacheAvoidsRereads: with a cache budget covering the whole
// store, an iterative all-dense workload reads each shard file exactly
// once; every later sweep is served from the LRU.
func TestEngineCacheAvoidsRereads(t *testing.T) {
	g := gen.TinySocial()
	const p = 6
	e := buildTestEngine(t, g, p, Options{CacheShards: p})
	op := api.EdgeOp{
		Update:       func(u, v graph.VID) bool { return true },
		UpdateAtomic: func(u, v graph.VID) bool { return true },
	}
	const sweeps = 5
	for i := 0; i < sweeps; i++ {
		e.EdgeMap(frontier.All(g), op, api.DirAuto)
	}
	st := e.Stats()
	if st.ShardLoads > int64(p) {
		t.Fatalf("%d disk loads across %d sweeps, want at most %d (one per shard)", st.ShardLoads, sweeps, p)
	}
	if st.CacheHits < st.ShardLoads*(sweeps-1) {
		t.Fatalf("only %d cache hits across %d sweeps of %d loads", st.CacheHits, sweeps, st.ShardLoads)
	}
}

// TestEnginePageRankMatchesSerial replaces the retired bespoke
// shard.PageRank check: the generic algorithm layer, run on the
// out-of-core engine, matches the serial oracle bit for bit at the same
// tolerance the old hard-coded sweep achieved.
func TestEnginePageRankMatchesSerial(t *testing.T) {
	g := gen.Preset("yahoo-sm")
	e := buildTestEngine(t, g, 24, Options{})
	got := prOnSystem(e, 10)
	want := serialPR(g, 10)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

// prOnSystem runs the standard power-method PageRank through the
// api.System interface (a local copy of algorithms.PR's loop, kept here
// to avoid an import cycle: algorithms' tests already run the full
// algorithm suite against this engine).
func prOnSystem(sys api.System, iters int) []float64 {
	g := sys.Graph()
	n := g.NumVertices()
	ranks := make([]float64, n)
	contrib := make([]float64, n)
	acc := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	const damping = 0.85
	op := api.EdgeOp{
		Update: func(u, v graph.VID) bool { acc[v] += contrib[u]; return true },
		UpdateAtomic: func(u, v graph.VID) bool {
			// The engine is partition-exclusive and must never take the
			// atomic path; reaching here is a contract violation.
			panic("shard engine called UpdateAtomic")
		},
	}
	all := frontier.All(g)
	for it := 0; it < iters; it++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if d := g.OutDegree(graph.VID(v)); d == 0 {
				dangling += ranks[v]
				contrib[v] = 0
			} else {
				contrib[v] = ranks[v] / float64(d)
			}
			acc[v] = 0
		}
		sys.EdgeMap(all, op, api.DirBackward)
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := 0; v < n; v++ {
			ranks[v] = base + damping*acc[v]
		}
	}
	return ranks
}

// serialPR is the oracle (same formulation as algorithms.SerialPR).
func serialPR(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	const damping = 0.85
	for it := 0; it < iters; it++ {
		acc := make([]float64, n)
		var dangling float64
		for u := 0; u < n; u++ {
			d := g.OutDegree(graph.VID(u))
			if d == 0 {
				dangling += ranks[u]
				continue
			}
			c := ranks[u] / float64(d)
			for _, v := range g.OutNeighbors(graph.VID(u)) {
				acc[v] += c
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := 0; v < n; v++ {
			ranks[v] = base + damping*acc[v]
		}
	}
	return ranks
}
